// Paged B+-tree over the NVBM file layer — the index substrate of the
// Etree-style out-of-core octree baseline (§2, §5.1).
//
// Etree stores octants as fixed-size records in 4 KiB pages and maintains
// a B-tree keyed by each octant's Z-value (Morton key) for lookup. This
// reimplementation keeps the same structure: all pages (internal and
// leaf) live "on storage" — an nvfs::File over the emulated NVBM device —
// and every page touch goes through a small LRU buffer pool, paying page
// granularity I/O plus file-layer software overhead. That cost structure
// is exactly what the paper blames for the out-of-core baseline's
// slowness on NVBM.
//
// In a valid linear octree no two leaves share an anchor, so the Morton
// key alone is a unique key; the refinement level travels in the record.
// Deletion is lazy (no page merging), as in the original Etree library.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/morton.hpp"
#include "nvfs/file_store.hpp"
#include "octree/cell_data.hpp"

namespace pmo::baseline {

/// One stored octant.
struct OctantRecord {
  std::uint64_t key = 0;  ///< Morton key (Z-value) on the finest grid
  std::uint8_t level = 0;
  CellData data;

  LocCode code() const {
    const auto a = morton_decode3(key);
    const int shift = kMaxLevel - level;
    return LocCode::from_grid(level, a[0] >> shift, a[1] >> shift,
                              a[2] >> shift);
  }
  static OctantRecord from(const LocCode& c, const CellData& d) {
    OctantRecord r;
    r.key = c.key();
    r.level = static_cast<std::uint8_t>(c.level());
    r.data = d;
    return r;
  }
};

struct BptreeStats {
  std::uint64_t page_reads = 0;   ///< buffer-pool misses (real I/O)
  std::uint64_t page_writes = 0;  ///< write-backs
  std::uint64_t cache_hits = 0;
  std::uint64_t splits = 0;
  /// Modeled DRAM time spent searching buffered pages: every page access
  /// (hit or miss) still walks the page in memory — binary search over
  /// keys plus the record copy. This is the "data indexing only incurs
  /// additional memory latency" cost the paper charges Etree-style
  /// designs with (§1).
  std::uint64_t search_dram_ns = 0;
  std::size_t pages = 0;
  std::size_t records = 0;
  int height = 0;
};

class Bptree {
 public:
  static constexpr std::size_t kPageSize = 4096;

  /// Opens (or creates) the tree in `file` within the store. `cache_pages`
  /// bounds the buffer pool.
  Bptree(nvfs::FileStore& store, const std::string& file_name,
         std::size_t cache_pages = 256);
  ~Bptree();

  Bptree(const Bptree&) = delete;
  Bptree& operator=(const Bptree&) = delete;

  /// Inserts or replaces the record with this key.
  void insert(const OctantRecord& rec);
  /// Removes the record; returns false if absent. Lazy: pages never merge.
  bool erase(std::uint64_t key);
  std::optional<OctantRecord> find(std::uint64_t key);
  /// Smallest record with key >= `key` (for cover probing / scans).
  std::optional<OctantRecord> lower_bound(std::uint64_t key);

  /// In-order scan starting at `from_key`; stop when fn returns false.
  void scan(std::uint64_t from_key,
            const std::function<bool(const OctantRecord&)>& fn);
  /// Full in-order scan.
  void scan_all(const std::function<bool(const OctantRecord&)>& fn) {
    scan(0, fn);
  }

  /// Rewrites a record's payload in place (key must exist).
  void update(const OctantRecord& rec);

  /// Flushes all dirty pages to the device (end-of-step durability).
  void flush();

  std::size_t size() const noexcept { return record_count_; }
  BptreeStats stats();
  /// Modeled DRAM search time accumulated so far (see BptreeStats).
  std::uint64_t search_dram_ns() const noexcept {
    return stats_.search_dram_ns;
  }

 private:
  // On-page layouts. Pages are raw byte arrays interpreted through these
  // fixed offsets; everything is little-endian POD.
  struct PageHeader {
    std::uint32_t is_leaf = 0;
    std::uint32_t count = 0;
    std::uint64_t next_leaf = 0;  ///< leaf chain (page id + 1; 0 = none)
  };
  static constexpr std::size_t kHeaderSize = sizeof(PageHeader);
  static constexpr std::size_t kRecordSize = 64;
  static_assert(sizeof(OctantRecord) <= kRecordSize);
  static constexpr std::size_t kLeafCap =
      (kPageSize - kHeaderSize) / kRecordSize;  // 63
  static constexpr std::size_t kInternalCap =
      (kPageSize - kHeaderSize) / 16 - 1;  // keys + child ids

  struct Page {
    std::vector<std::byte> bytes;
    bool dirty = false;
  };

  struct Meta {
    std::uint64_t magic = 0;
    std::uint64_t root = 0;
    std::uint64_t next_page = 1;
    std::uint64_t height = 1;
    std::uint64_t records = 0;
  };
  static constexpr std::uint64_t kMagic = 0x45545245455f4250ull;

  // buffer pool -------------------------------------------------------------
  Page& fetch(std::uint64_t page_id);
  void mark_dirty(std::uint64_t page_id);
  std::uint64_t alloc_page(bool leaf);
  void write_back(std::uint64_t page_id, Page& page);
  void evict_if_needed();

  // page accessors ----------------------------------------------------------
  static PageHeader& header(Page& p);
  static std::uint64_t* internal_keys(Page& p);
  static std::uint64_t* internal_children(Page& p);
  static OctantRecord* leaf_records(Page& p);

  // tree ops ----------------------------------------------------------------
  std::uint64_t find_leaf(std::uint64_t key,
                          std::vector<std::uint64_t>* path = nullptr);
  void insert_into_parent(std::vector<std::uint64_t>& path,
                          std::uint64_t left, std::uint64_t sep,
                          std::uint64_t right);
  void save_meta();

  nvfs::FileStore& store_;
  nvfs::File* file_;
  Meta meta_;
  std::size_t record_count_ = 0;
  std::size_t cache_capacity_;
  std::unordered_map<std::uint64_t, Page> cache_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      lru_pos_;
  BptreeStats stats_;
};

}  // namespace pmo::baseline
