// Minimal file-system-like layer over an nvbm::Device.
//
// The paper's two baselines both reach NVBM through a *file-system
// interface*: the Gerris in-core octree writes whole-tree snapshot files,
// and the Etree out-of-core octree stores 4 KiB octant pages behind a
// B-tree index. This layer models that path: block-granular I/O plus a
// per-operation software overhead (system call + file-system stack),
// which is exactly the cost the paper argues byte-addressable access
// avoids.
//
// Durability note: file *data* lives on the device; the directory is
// volatile. That matches how the paper uses files — snapshot recovery
// reads from a shared parallel file system that does not fail with the
// compute node (§5.6), so directory persistence is out of scope.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nvbm/device.hpp"

namespace pmo::nvfs {

struct FsConfig {
  std::size_t block_size = 4096;      ///< the paper's 4 KiB I/O unit
  std::uint64_t op_overhead_ns = 1500;  ///< per-call fs/syscall software cost
};

struct FsCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t modeled_overhead_ns = 0;
};

class FileStore;

/// Handle to an open file. Obtained from FileStore::open/create; remains
/// valid while the store lives.
class File {
 public:
  std::uint64_t size() const noexcept { return size_; }

  /// Positional read; returns bytes actually read (may be short at EOF).
  std::size_t pread(std::uint64_t offset, void* dst, std::size_t len);
  /// Positional write; extends the file as needed.
  void pwrite(std::uint64_t offset, const void* src, std::size_t len);
  void append(const void* src, std::size_t len) { pwrite(size_, src, len); }
  /// Flushes this file's blocks to the durable medium.
  void fsync();
  void truncate(std::uint64_t new_size);

 private:
  friend class FileStore;
  explicit File(FileStore& store) : store_(store) {}

  FileStore& store_;
  std::vector<std::uint64_t> blocks_;  // device offsets, one per block
  std::uint64_t size_ = 0;
};

/// Flat-namespace store of files carved from one NVBM device.
class FileStore {
 public:
  FileStore(nvbm::Device& device, FsConfig config = {});

  /// Creates (or truncates) a file.
  File& create(const std::string& name);
  /// Opens an existing file; throws if missing.
  File& open(const std::string& name);
  bool exists(const std::string& name) const;
  void unlink(const std::string& name);

  const FsCounters& counters() const noexcept { return counters_; }
  const FsConfig& config() const noexcept { return config_; }
  nvbm::Device& device() noexcept { return device_; }
  std::uint64_t blocks_in_use() const noexcept { return used_blocks_; }

 private:
  friend class File;
  std::uint64_t alloc_block();
  void free_block(std::uint64_t offset);
  void charge_op();

  nvbm::Device& device_;
  FsConfig config_;
  FsCounters counters_;
  std::unordered_map<std::string, std::unique_ptr<File>> files_;
  std::vector<std::uint64_t> free_blocks_;
  std::uint64_t next_block_ = 0;
  std::uint64_t used_blocks_ = 0;
};

}  // namespace pmo::nvfs
