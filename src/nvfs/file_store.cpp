#include "nvfs/file_store.hpp"

#include <algorithm>
#include <cstring>

#include "common/timing.hpp"

namespace pmo::nvfs {

FileStore::FileStore(nvbm::Device& device, FsConfig config)
    : device_(device), config_(config) {
  PMO_CHECK_MSG((config_.block_size & (config_.block_size - 1)) == 0,
                "block size must be a power of two");
}

void FileStore::charge_op() {
  counters_.modeled_overhead_ns += config_.op_overhead_ns;
  if (device_.config().latency_mode == nvbm::LatencyMode::kInjected)
    spin_ns(config_.op_overhead_ns);
}

std::uint64_t FileStore::alloc_block() {
  ++used_blocks_;
  if (!free_blocks_.empty()) {
    const auto off = free_blocks_.back();
    free_blocks_.pop_back();
    return off;
  }
  const auto off = next_block_ * config_.block_size;
  PMO_CHECK_MSG(off + config_.block_size <= device_.capacity(),
                "file store device full");
  ++next_block_;
  return off;
}

void FileStore::free_block(std::uint64_t offset) {
  --used_blocks_;
  free_blocks_.push_back(offset);
}

File& FileStore::create(const std::string& name) {
  auto it = files_.find(name);
  if (it != files_.end()) {
    it->second->truncate(0);
    return *it->second;
  }
  auto file = std::unique_ptr<File>(new File(*this));
  auto& ref = *file;
  files_.emplace(name, std::move(file));
  return ref;
}

File& FileStore::open(const std::string& name) {
  const auto it = files_.find(name);
  PMO_CHECK_MSG(it != files_.end(), "no such file: " << name);
  return *it->second;
}

bool FileStore::exists(const std::string& name) const {
  return files_.count(name) != 0;
}

void FileStore::unlink(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) return;
  for (const auto block : it->second->blocks_) free_block(block);
  files_.erase(it);
}

std::size_t File::pread(std::uint64_t offset, void* dst, std::size_t len) {
  store_.charge_op();
  ++store_.counters_.reads;
  if (offset >= size_) return 0;
  len = static_cast<std::size_t>(
      std::min<std::uint64_t>(len, size_ - offset));
  const std::size_t bs = store_.config_.block_size;
  std::size_t done = 0;
  auto* out = static_cast<std::byte*>(dst);
  while (done < len) {
    const std::uint64_t pos = offset + done;
    const std::size_t bi = static_cast<std::size_t>(pos / bs);
    const std::size_t in_block = static_cast<std::size_t>(pos % bs);
    const std::size_t n = std::min(len - done, bs - in_block);
    store_.device_.read(blocks_[bi] + in_block, out + done, n);
    done += n;
  }
  store_.counters_.bytes_read += len;
  return len;
}

void File::pwrite(std::uint64_t offset, const void* src, std::size_t len) {
  store_.charge_op();
  ++store_.counters_.writes;
  const std::size_t bs = store_.config_.block_size;
  const std::uint64_t end = offset + len;
  while (blocks_.size() * bs < end) blocks_.push_back(store_.alloc_block());
  std::size_t done = 0;
  const auto* in = static_cast<const std::byte*>(src);
  while (done < len) {
    const std::uint64_t pos = offset + done;
    const std::size_t bi = static_cast<std::size_t>(pos / bs);
    const std::size_t in_block = static_cast<std::size_t>(pos % bs);
    const std::size_t n = std::min(len - done, bs - in_block);
    store_.device_.write(blocks_[bi] + in_block, in + done, n);
    done += n;
  }
  size_ = std::max(size_, end);
  store_.counters_.bytes_written += len;
}

void File::fsync() {
  store_.charge_op();
  const std::size_t bs = store_.config_.block_size;
  for (const auto block : blocks_) store_.device_.flush(block, bs);
  store_.device_.persist_barrier();
}

void File::truncate(std::uint64_t new_size) {
  const std::size_t bs = store_.config_.block_size;
  const std::size_t keep = static_cast<std::size_t>((new_size + bs - 1) / bs);
  while (blocks_.size() > keep) {
    store_.free_block(blocks_.back());
    blocks_.pop_back();
  }
  size_ = new_size;
}

}  // namespace pmo::nvfs
