// Mesh extraction (the paper's Extract routine, §2): converts the leaf
// mesh into flat visualization structures — a legacy-VTK unstructured
// grid file for ParaView-style tools, and a quick ASCII slice for
// terminals. Extract is executed on demand (the paper excludes it from
// the timed runs; so do our benches).
#pragma once

#include <iosfwd>
#include <string>

#include "amr/mesh_backend.hpp"

namespace pmo::amr {

/// Writes the leaf mesh as a legacy VTK unstructured grid (hexahedra)
/// with vof/tracer/pressure cell data. Returns the number of cells.
std::size_t write_vtk(MeshBackend& mesh, const std::string& path);

/// Renders an axis-aligned slice (x = x_slice plane) of the vof field as
/// ASCII art into `os`: '#' liquid, '+' interface, '.' gas. `cols`/`rows`
/// set the raster size.
void print_slice(MeshBackend& mesh, std::ostream& os, double x_slice = 0.5,
                 int cols = 64, int rows = 32);

/// Summary of a mesh for quick reporting.
struct MeshSummary {
  std::size_t leaves = 0;
  std::size_t interface_cells = 0;
  int min_level = 0;
  int max_level = 0;
  double liquid_volume = 0.0;
};
MeshSummary summarize(MeshBackend& mesh);

}  // namespace pmo::amr
