#include "amr/neighbor_index.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/morton.hpp"
#include "common/simd.hpp"

namespace pmo::amr {

namespace {

/// Keys with the sub-octant bits of `level` cleared compare equal iff one
/// octant is the other's ancestor — the key-mask form of
/// LocCode::contains (ancestor_at truncates exactly these bits).
inline std::uint64_t level_mask(int level) noexcept {
  return ~((std::uint64_t{1} << (3 * (kMaxLevel - level))) - 1);
}

/// One neighbor resolution request: the same-size neighbor key of leaf
/// `out / 6` across face `out % 6`, plus that leaf's level for the
/// covering test. 16 bytes; 6n of them per build.
struct Query {
  std::uint64_t nkey;
  std::uint32_t out;  ///< slot table index (6*leaf + face)
  std::uint8_t level; ///< querying leaf's level
};

}  // namespace

void FaceNeighborIndex::build(const std::uint64_t* keys,
                              const std::uint8_t* levels, std::size_t n) {
  PMO_DCHECK(n < static_cast<std::size_t>(INT32_MAX) / kFaceCount);
  slots_.assign(n * static_cast<std::size_t>(simd::kFaceCount), -1);
  leaves_ = n;
  valid_ = false;  // caller stamps after build
  last_build_probes_ = 0;
  if (n == 0) return;

  constexpr std::size_t kBlock = 8;
  std::uint32_t xs[kBlock], ys[kBlock], zs[kBlock];
  std::uint32_t nxs[kBlock], nys[kBlock], nzs[kBlock];
  std::uint64_t nkeys[kBlock];
  bool in_domain[kBlock];

  // Pass 1: compute all 6n same-size neighbor keys, 8 leaves at a time
  // through the BMI2 batch kernels. Out-of-domain faces keep slot -1 and
  // produce no query.
  std::vector<Query> queries;
  queries.reserve(n * static_cast<std::size_t>(simd::kFaceCount));
  for (int f = 0; f < simd::kFaceCount; ++f) {
    const int dx = simd::kFaces[f][0];
    const int dy = simd::kFaces[f][1];
    const int dz = simd::kFaces[f][2];
    for (std::size_t i = 0; i < n; i += kBlock) {
      const std::size_t m = n - i < kBlock ? n - i : kBlock;
      // Finest-grid anchors of leaves i..i+m-1.
      morton_decode3_batch(keys + i, xs, ys, zs, m);
      for (std::size_t l = 0; l < m; ++l) {
        const int level = levels[i + l];
        const int shift = kMaxLevel - level;
        const std::int64_t side = std::int64_t{1} << level;
        const std::int64_t gx =
            static_cast<std::int64_t>(xs[l] >> shift) + dx;
        const std::int64_t gy =
            static_cast<std::int64_t>(ys[l] >> shift) + dy;
        const std::int64_t gz =
            static_cast<std::int64_t>(zs[l] >> shift) + dz;
        in_domain[l] = gx >= 0 && gx < side && gy >= 0 && gy < side &&
                       gz >= 0 && gz < side;
        // Out-of-domain lanes encode a dummy key; their slot stays -1.
        nxs[l] = in_domain[l]
                     ? static_cast<std::uint32_t>(gx) << shift
                     : 0;
        nys[l] = in_domain[l]
                     ? static_cast<std::uint32_t>(gy) << shift
                     : 0;
        nzs[l] = in_domain[l]
                     ? static_cast<std::uint32_t>(gz) << shift
                     : 0;
      }
      morton_encode3_batch(nxs, nys, nzs, nkeys, m);
      for (std::size_t l = 0; l < m; ++l) {
        if (!in_domain[l]) continue;
        queries.push_back(
            {nkeys[l],
             static_cast<std::uint32_t>(
                 (i + l) * static_cast<std::size_t>(simd::kFaceCount) +
                 static_cast<std::size_t>(f)),
             static_cast<std::uint8_t>(levels[i + l])});
      }
    }
  }

  // Pass 2: sort the queries by neighbor key and resolve them all with
  // ONE merge sweep over the sorted leaf keys. The cursor `j` tracks the
  // last leaf with keys[j] <= query key; it only moves forward, so the
  // whole build inspects each leaf key once plus one boundary check and
  // one covering test per query — O(1) amortized candidate inspections
  // per face, versus O(log n) for a per-face binary search. Ties in the
  // sort are irrelevant: equal neighbor keys resolve to the same cursor.
  // Probe counting convention (LeafChunk::find's): every candidate-slot
  // key inspection is one probe, so `last_build_probes_` is directly
  // comparable to amr.chunk.find_probes.
  std::sort(queries.begin(), queries.end(),
            [](const Query& a, const Query& b) { return a.nkey < b.nkey; });
  std::uint64_t probes = 0;
  std::size_t j = 0;
  for (const Query& q : queries) {
    while (j + 1 < n) {
      ++probes;
      if (keys[j + 1] <= q.nkey) {
        ++j;
      } else {
        break;
      }
    }
    // Candidate validity + covering test, LeafChunk::find semantics: a
    // coarser-or-equal candidate must contain the same-size neighbor
    // octant; a finer candidate must be its first descendant corner
    // leaf. One key inspection.
    ++probes;
    if (keys[j] > q.nkey) continue;  // query precedes every leaf
    const int lc = levels[j];
    const int ll = q.level;
    const bool covered = lc <= ll
                             ? (q.nkey & level_mask(lc)) == keys[j]
                             : (keys[j] & level_mask(ll)) == q.nkey;
    if (covered) slots_[q.out] = static_cast<std::int32_t>(j);
  }
  last_build_probes_ = probes;
}

}  // namespace pmo::amr
