#include "amr/droplet.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/simd.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"

namespace pmo::amr {

namespace {

/// Chunk count of the solve's stencil gather. Fixed — never derived from
/// the thread count — so the decomposition, and with it every modeled
/// number, is identical no matter how many workers run the chunks.
constexpr std::size_t kStencilChunks = 16;

/// Sorted-key lookup from a leaf to its precomputed interface-band mark,
/// shared by the refine and coarsen predicates. Hinted binary search
/// rather than a running cursor on purpose: predicate call order is
/// backend-specific (PM-octree's coarsen descends internal nodes, Etree
/// re-evaluates a sliding window), so lookups must be idempotent by key
/// — the hint only exploits the Morton locality of consecutive calls.
class MarkMap {
 public:
  MarkMap(const std::vector<std::uint64_t>& keys,
          const std::vector<std::uint8_t>& marks)
      : keys_(keys), marks_(marks) {}

  /// Mark of the leaf with anchor key `key` (must be present: predicates
  /// are only ever called on leaves of the enumeration the marks were
  /// computed from).
  bool lookup(std::uint64_t key) const {
    const std::size_t n = keys_.size();
    const std::size_t h = hint_ < n ? hint_ : 0;
    if (keys_[h] == key) return marks_[h] != 0;
    if (h + 1 < n && keys_[h + 1] == key) {
      hint_ = h + 1;
      return marks_[h + 1] != 0;
    }
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    PMO_CHECK_MSG(it != keys_.end() && *it == key,
                  "mark lookup of unknown leaf key");
    hint_ = static_cast<std::size_t>(it - keys_.begin());
    return marks_[hint_] != 0;
  }

 private:
  const std::vector<std::uint64_t>& keys_;
  const std::vector<std::uint8_t>& marks_;
  mutable std::size_t hint_ = 0;
};

}  // namespace

DropletWorkload::DropletWorkload(DropletParams params) : params_(params) {
  PMO_CHECK_MSG(params_.min_level >= 1 &&
                    params_.max_level >= params_.min_level &&
                    params_.max_level <= kMaxLevel,
                "bad refinement levels");
}

double DropletWorkload::jet_profile(double z, double t) const {
  // The jet is ejected upward (+z): the nozzle/reservoir sits at the
  // bottom of the domain and the tip advances toward z = 1. (Gravity
  // orientation is irrelevant to the capillary physics; +z keeps the hot
  // region late in Morton order, i.e. adversarial to naive placement.)
  const auto& p = params_;
  if (z <= p.nozzle_z) return p.reservoir_radius;  // reservoir slab
  const double tip = tip_z(t);
  if (z > tip) return -1.0;  // beyond the jet tip: gas
  // Capillary disturbance traveling along the jet, amplitude growing
  // exponentially until it exceeds the radius — necks pinch (r < 0) and
  // the jet breaks into segments: the droplets.
  const double amp = std::min(1.6, p.initial_amplitude *
                                       std::exp(p.growth_rate * t));
  const double phase = p.wave_number * (z - p.wave_speed * t);
  const double r = p.jet_radius * (1.0 - amp * (0.5 + 0.5 *
                                                std::sin(phase)));
  return r;
}

double DropletWorkload::phi(double x, double y, double z, double t) const {
  const double rx = x - params_.axis_x;
  const double ry = y - params_.axis_y;
  const double radial = std::sqrt(rx * rx + ry * ry);
  return jet_profile(z, t) - radial;
}

double DropletWorkload::vof_cell(const LocCode& code, double t) const {
  const auto c = code.center_unit();
  const double h = code.size_unit();
  // Coarse cells subsample phi so features thinner than the cell (the
  // reservoir slab, a droplet) still register a fractional volume — a
  // cheap stand-in for the exact geometric VOF integral Gerris computes.
  const int n = std::clamp(1 << (params_.max_level - code.level()), 1, 4);
  const double sub_h = h / n;
  const double band = params_.interface_band * sub_h;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = c[0] + (i + 0.5 - 0.5 * n) * sub_h;
    for (int j = 0; j < n; ++j) {
      const double y = c[1] + (j + 0.5 - 0.5 * n) * sub_h;
      for (int k = 0; k < n; ++k) {
        const double z = c[2] + (k + 0.5 - 0.5 * n) * sub_h;
        // Smeared Heaviside of the signed interface function.
        sum += std::clamp(0.5 + phi(x, y, z, t) / (2.0 * band), 0.0, 1.0);
      }
    }
  }
  return sum / (n * n * n);
}

bool DropletWorkload::refine_feature(const LocCode&,
                                     const CellData& d) const {
  return is_interface_cell(d, 1e-3);
}

double DropletWorkload::tip_z(double t) const {
  return std::min(0.94, params_.nozzle_z + params_.jet_speed * t);
}

bool DropletWorkload::hot_feature_at(const LocCode& code, const CellData& d,
                                     double t) const {
  if (!is_interface_cell(d, 1e-3)) return false;
  const double z = code.center_unit()[2];
  return std::abs(z - tip_z(t)) < params_.focus_halfwidth;
}

std::uint64_t DropletWorkload::initialize(MeshBackend& mesh) {
  const auto t0 = mesh.modeled_ns();
  // Uniform background to min_level.
  for (int l = 0; l < params_.min_level; ++l) {
    mesh.refine_where([](const LocCode&, const CellData&) { return true; },
                      nullptr);
  }
  // Seed the VOF field, then refine the interface band to max_level.
  for (int l = params_.min_level; l <= params_.max_level; ++l) {
    mesh.sweep_leaves([&](const LocCode& code, CellData& d) {
      const double v = vof_cell(code, 0.0);
      if (v == d.vof) return false;
      d.vof = v;
      return true;
    });
    if (l == params_.max_level) break;
    mesh.refine_where(
        [&](const LocCode& code, const CellData& d) {
          return code.level() < params_.max_level &&
                 refine_feature(code, d);
        },
        [&](const LocCode& code, CellData& d) {
          d.vof = vof_cell(code, 0.0);
        });
  }
  mesh.balance();
  time_ = 0.0;
  return mesh.modeled_ns() - t0;
}

StepStats DropletWorkload::step(MeshBackend& mesh, int step_index,
                                bool persist) {
  telemetry::Span span("amr.step");
  StepStats out;
  const auto& p = params_;
  const double t_new = (step_index + 1) * p.dt;
  // Hand the pool to the backend too, so internal phases (the PM-octree's
  // persist-time merge) can fan out under the same determinism contract.
  mesh.set_exec(exec_);

  // 1. Advance the interface and velocity fields (advection proxy):
  // writes concentrate in and around the liquid — the moving hot region.
  // The post-advect (key, level, vof) triples are harvested on the way
  // (the sweep enumerates leaves in the same Morton order the refine
  // collection will): the interface-band test for refine/coarsen then
  // runs as one vectorized pass over these arrays instead of a scalar
  // test per predicate call — zero extra modeled traffic.
  std::vector<std::uint64_t> keys;
  std::vector<std::uint8_t> levels;
  std::vector<double> vofs;
  std::uint64_t mark = mesh.modeled_ns();
  mesh.sweep_leaves([&](const LocCode& code, CellData& d) {
    const double v = vof_cell(code, t_new);
    const double w = p.jet_speed * v;  // liquid advances toward +z
    keys.push_back(code.key());
    levels.push_back(static_cast<std::uint8_t>(code.level()));
    vofs.push_back(v);
    if (v == d.vof && w == d.w) return false;  // nothing changed: no write
    d.vof = v;
    d.u = 0.0;
    d.v = 0.0;
    d.w = w;
    return true;
  });
  out.advect_ns = mesh.modeled_ns() - mark;

  // 2. Refine the interface band; coarsen far-field regions. Both
  // predicates consume the mark bitmap (simd::mark_interface_band is the
  // lane-masked form of refine_feature's band test); the PMO_DCHECK
  // cross-checks every lookup against the direct scalar predicate in
  // debug builds.
  mark = mesh.modeled_ns();
  std::vector<std::uint8_t> marks(keys.size());
  simd::mark_interface_band(vofs.data(), vofs.size(), 1e-3, marks.data());
  // Children created by the refine pass, recorded in creation order —
  // globally Morton-sorted, since parents are split in Morton order and
  // children are contiguous within the parent octant.
  std::vector<std::uint64_t> child_keys;
  std::vector<double> child_vofs;
  {
    const MarkMap map(keys, marks);
    out.refined = mesh.refine_where(
        [&](const LocCode& code, const CellData& d) {
          const bool band = map.lookup(code.key());
          PMO_DCHECK(band == is_interface_cell(d, 1e-3));
          (void)d;
          return code.level() < p.max_level && band;
        },
        [&](const LocCode& code, CellData& d) {
          d.vof = vof_cell(code, t_new);
          child_keys.push_back(code.key());
          child_vofs.push_back(d.vof);
        });
  }
  // Post-refine leaf enumeration, rebuilt without touching the mesh:
  // every refined slot expands in place to its 8 recorded children,
  // everything else carries over. One more mark pass over the merged
  // vof array feeds the coarsen predicate.
  std::vector<std::uint64_t> merged_keys;
  std::vector<double> merged_vofs;
  merged_keys.reserve(keys.size() + child_keys.size());
  merged_vofs.reserve(keys.size() + child_vofs.size());
  std::size_t child_at = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (marks[i] != 0 && levels[i] < p.max_level) {
      for (int j = 0; j < 8; ++j, ++child_at) {
        merged_keys.push_back(child_keys[child_at]);
        merged_vofs.push_back(child_vofs[child_at]);
      }
    } else {
      merged_keys.push_back(keys[i]);
      merged_vofs.push_back(vofs[i]);
    }
  }
  PMO_DCHECK(child_at == child_keys.size());
  std::vector<std::uint8_t> merged_marks(merged_keys.size());
  simd::mark_interface_band(merged_vofs.data(), merged_vofs.size(), 1e-3,
                            merged_marks.data());
  {
    const MarkMap map(merged_keys, merged_marks);
    out.coarsened = mesh.coarsen_where(
        [&](const LocCode& code, const CellData& d) {
          const bool band = map.lookup(code.key());
          PMO_DCHECK(band == is_interface_cell(d, 1e-3));
          (void)d;
          return code.level() > p.min_level && !band;
        });
  }
  out.refine_coarsen_ns = mesh.modeled_ns() - mark;

  // 3. Enforce 2:1.
  mark = mesh.modeled_ns();
  out.balance_refined = mesh.balance();
  out.balance_ns = mesh.modeled_ns() - mark;

  // 4. Solve: finite-volume relaxation of the tracer field using face-
  // neighbor stencils. Generates the solver's read/write traffic (writes
  // mostly in liquid cells).
  mark = mesh.modeled_ns();
  std::vector<double> relaxed;
  std::vector<std::uint8_t> touched;
  // One leaf-set stamp for the whole solve phase: between Jacobi sweeps
  // only data write-backs happen, so the face-neighbor index built in
  // the first sweep stays valid for the rest of the step even on
  // backends whose default structure_version() always reports change.
  const std::uint64_t leafset_version = mesh.structure_version();
  auto& reg = telemetry::Registry::global();
  for (int sweep = 0; sweep < p.solver_sweeps; ++sweep) {
    if (p.neighbor_index) {
      // Jacobi gather over an SoA leaf snapshot: all 6 neighbor slots
      // per leaf come from the prebuilt index (one batched build, reused
      // across sweeps and unchanged-topology steps), and the gather
      // itself is the SIMD kernel — bit-identical to the per-face-find
      // arm below by the common/simd.hpp determinism contract. Each
      // chunk writes only its own [begin, end) scratch slots.
      mesh.sweep_leaves_chunked_soa(
          kStencilChunks,
          [&](const SoaLeafChunk& ch) {
            const SoaLeaves& soa = *ch.leaves;
            simd::gather_relax(soa.vof.data(), soa.tracer.data(),
                               nbr_index_.slots(), ch.begin, ch.end,
                               relaxed.data(), touched.data());
          },
          exec_,
          [&](const SoaLeaves& soa) {
            relaxed.assign(soa.size(), 0.0);
            touched.assign(soa.size(), 0);
            if (nbr_index_.valid_for(leafset_version, soa.size())) {
              reg.counter("amr.neighbor.reuses").add();
              return;
            }
            nbr_index_.build(soa);
            nbr_index_.stamp(leafset_version, soa.size());
            reg.counter("amr.neighbor.builds").add();
            reg.counter("amr.neighbor.build_probes")
                .add(nbr_index_.last_build_probes());
          });
    } else {
      // Legacy arm: per-face containment search in every sweep
      // (LeafChunk::find; its probe counter is the baseline the index's
      // build_probes are gated against). The loop body is the scalar
      // gather — same face table, same skip test, same accumulation
      // order as the kernels.
      mesh.sweep_leaves_chunked(
          kStencilChunks,
          [&](const LeafChunk& ch) {
            for (std::size_t i = ch.begin; i < ch.end; ++i) {
              const LocCode& code = ch.codes[i];
              const CellData& d = ch.cells[i];
              if (simd::gather_skip_cell(d.vof, d.tracer)) continue;
              double acc = 0.0;
              int n = 0;
              for (int f = 0; f < simd::kFaceCount; ++f) {
                LocCode ncode;
                if (!code.neighbor(simd::kFaces[f][0], simd::kFaces[f][1],
                                   simd::kFaces[f][2], ncode))
                  continue;
                if (const CellData* nb = ch.find(ncode)) {
                  acc += nb->tracer;
                  ++n;
                }
              }
              const double r =
                  n > 0 ? 0.5 * d.tracer + 0.5 * (acc / n) : d.tracer;
              relaxed[i] = r + 0.1 * d.vof;  // liquid acts as a source
              touched[i] = 1;
            }
          },
          exec_,
          [&](std::size_t leaves) {
            relaxed.assign(leaves, 0.0);
            touched.assign(leaves, 0);
          });
    }
    // Write-back: single-writer CoW mutation, Morton order (sweep_leaves
    // enumerates the same leaves the snapshot did — no surgery between).
    std::size_t idx = 0;
    mesh.sweep_leaves([&](const LocCode&, CellData& d) {
      const std::size_t i = idx++;
      if (touched[i] == 0) return false;
      d.tracer = relaxed[i];
      return true;
    });
  }
  // Sub-cycled sweeps over the focus window: the pinch-off region needs
  // finer time resolution, concentrating the solver's writes on the hot
  // subtrees (the access pattern §3.3's transformation exploits). The
  // traversal prunes octants whose z-range misses the window.
  const double win_lo = tip_z(t_new) - p.focus_halfwidth;
  const double win_hi = tip_z(t_new) + p.focus_halfwidth;
  auto in_window = [&](const LocCode& code) {
    const double inv =
        1.0 / static_cast<double>(std::uint32_t{1} << kMaxLevel);
    const double z0 = code.anchor().z * inv;
    const double z1 = z0 + code.size_unit();
    return z1 >= win_lo && z0 <= win_hi;
  };
  for (int sweep = 0; sweep < p.focus_sweeps; ++sweep) {
    mesh.sweep_leaves_pruned(in_window, [&](const LocCode& code,
                                            CellData& d) {
      if (!hot_feature_at(code, d, t_new)) return false;
      d.tracer = 0.7 * d.tracer + 0.3 * d.vof;
      d.pressure += 0.05 * (d.vof - 0.5);
      return true;
    });
  }
  out.solve_ns = mesh.modeled_ns() - mark;

  // Mesh census (charged to the Solve bucket: the solver owns the final
  // reduction pass in Gerris too).
  mark = mesh.modeled_ns();
  out.leaves = mesh.leaf_count();
  out.solve_ns += mesh.modeled_ns() - mark;

  // 5. Persist the step (snapshot / pm_persistent / fsync).
  if (persist) {
    mark = mesh.modeled_ns();
    mesh.end_step(step_index);
    out.persist_ns = mesh.modeled_ns() - mark;
  }

  reg.counter("amr.steps").add();
  reg.counter("amr.refined").add(out.refined);
  reg.counter("amr.coarsened").add(out.coarsened);
  reg.counter("amr.balance_refined").add(out.balance_refined);

  // Library sampling point: one time-series tick per completed step
  // (driver-thread gated; a no-op unless a MetricSampler is installed).
  telemetry::timeseries::tick_point();

  time_ = t_new;
  return out;
}

}  // namespace pmo::amr
