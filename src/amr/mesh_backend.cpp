#include "amr/mesh_backend.hpp"

#include <algorithm>
#include <vector>

#include "exec/pool.hpp"

namespace pmo::amr {

const CellData* LeafChunk::find(const LocCode& code) const noexcept {
  if (leaves == 0) return nullptr;
  // Same containment search as cluster::Partition::owner_of: the
  // candidate is the last leaf whose key is <= code's key; it covers
  // `code` iff code lies in its octant. Stencil gathers probe in
  // near-Morton order, so first try the last candidate (and its right
  // neighbor) before paying for the binary search.
  std::size_t idx;
  const std::size_t h = hint < leaves ? hint : 0;
  if (codes[h].key() <= code.key() &&
      (h + 1 == leaves || code.key() < codes[h + 1].key())) {
    idx = h;
  } else if (h + 2 <= leaves && codes[h + 1].key() <= code.key() &&
             (h + 2 == leaves || code.key() < codes[h + 2].key())) {
    idx = h + 1;
  } else {
    const LocCode* first = codes;
    const LocCode* last = codes + leaves;
    const LocCode* it = std::upper_bound(
        first, last, code, [](const LocCode& a, const LocCode& b) {
          return a.key() < b.key();
        });
    if (it == first) return nullptr;
    idx = static_cast<std::size_t>(it - first) - 1;
  }
  hint = idx;
  const LocCode& leaf = codes[idx];
  if (leaf.level() <= code.level()) {
    return leaf.contains(code) ? &cells[idx] : nullptr;
  }
  // The covering region is refined finer than `code`: the candidate is
  // code's first descendant corner leaf.
  return code.contains(leaf) ? &cells[idx] : nullptr;
}

void MeshBackend::sweep_leaves_chunked(std::size_t chunks,
                                       const LeafChunkFn& fn,
                                       exec::ThreadPool* pool,
                                       const LeafPrepareFn& prepare) {
  // Charged extraction: the traversal goes through the backend's normal
  // read path, so the solver's read traffic stays in the modeled time
  // and heat statistics exactly once per sweep.
  std::vector<LocCode> codes;
  std::vector<CellData> cells;
  visit_leaves([&](const LocCode& c, const CellData& d) {
    codes.push_back(c);
    cells.push_back(d);
  });
  const std::size_t n = codes.size();
  if (prepare) prepare(n);
  if (n == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, n);
  const auto run_chunk = [&](std::size_t k) {
    LeafChunk ch;
    ch.index = k;
    ch.begin = k * n / chunks;
    ch.end = (k + 1) * n / chunks;
    ch.codes = codes.data();
    ch.cells = cells.data();
    ch.leaves = n;
    fn(ch);
  };
  // When the sweep is reached from inside a pool task (a serve-style
  // mutator running as one run_tasks() lane), fall back to inline chunks
  // instead of tripping the nesting guard — same decomposition, same
  // results, sequential execution.
  if (pool != nullptr && !exec::in_parallel_task()) {
    pool->parallel_for(chunks, run_chunk);
  } else {
    for (std::size_t k = 0; k < chunks; ++k) run_chunk(k);
  }
}

}  // namespace pmo::amr
