#include "amr/mesh_backend.hpp"

#include <algorithm>
#include <vector>

#include "exec/pool.hpp"
#include "telemetry/telemetry.hpp"

namespace pmo::amr {

const CellData* LeafChunk::find(const LocCode& code) const noexcept {
  if (leaves == 0) return nullptr;
  // Same containment search as cluster::Partition::owner_of: the
  // candidate is the last leaf whose key is <= code's key; it covers
  // `code` iff code lies in its octant. Stencil gathers probe in
  // near-Morton order, so first try the last candidate (and its right
  // neighbor) before paying for the binary search. Every candidate-slot
  // key inspection counts one probe (the perf_smoke baseline the
  // face-neighbor index is gated against).
  std::size_t idx;
  const std::size_t h = hint < leaves ? hint : 0;
  ++probes;
  if (codes[h].key() <= code.key() &&
      (h + 1 == leaves || code.key() < codes[h + 1].key())) {
    idx = h;
  } else if (++probes, h + 2 <= leaves && codes[h + 1].key() <= code.key() &&
                           (h + 2 == leaves ||
                            code.key() < codes[h + 2].key())) {
    idx = h + 1;
  } else {
    // upper_bound by key, written out so each bisection step is counted.
    std::size_t lo = 0;
    std::size_t hi = leaves;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      ++probes;
      if (codes[mid].key() <= code.key()) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) return nullptr;
    idx = lo - 1;
  }
  hint = idx;
  const LocCode& leaf = codes[idx];
  if (leaf.level() <= code.level()) {
    return leaf.contains(code) ? &cells[idx] : nullptr;
  }
  // The covering region is refined finer than `code`: the candidate is
  // code's first descendant corner leaf.
  return code.contains(leaf) ? &cells[idx] : nullptr;
}

void MeshBackend::sweep_leaves_chunked(std::size_t chunks,
                                       const LeafChunkFn& fn,
                                       exec::ThreadPool* pool,
                                       const LeafPrepareFn& prepare) {
  // Charged extraction: the traversal goes through the backend's normal
  // read path, so the solver's read traffic stays in the modeled time
  // and heat statistics exactly once per sweep.
  std::vector<LocCode> codes;
  std::vector<CellData> cells;
  visit_leaves([&](const LocCode& c, const CellData& d) {
    codes.push_back(c);
    cells.push_back(d);
  });
  const std::size_t n = codes.size();
  if (prepare) prepare(n);
  if (n == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, n);
  auto& probe_counter =
      telemetry::Registry::global().counter("amr.chunk.find_probes");
  const auto run_chunk = [&](std::size_t k) {
    LeafChunk ch;
    ch.index = k;
    ch.begin = k * n / chunks;
    ch.end = (k + 1) * n / chunks;
    ch.codes = codes.data();
    ch.cells = cells.data();
    ch.leaves = n;
    fn(ch);
    // Counter adds commute, so the per-sweep total is thread-count
    // independent (each chunk's probe sequence is fixed).
    if (ch.probes != 0) probe_counter.add(ch.probes);
  };
  // When the sweep is reached from inside a pool task (a serve-style
  // mutator running as one run_tasks() lane), fall back to inline chunks
  // instead of tripping the nesting guard — same decomposition, same
  // results, sequential execution.
  if (pool != nullptr && !exec::in_parallel_task()) {
    pool->parallel_for(chunks, run_chunk);
  } else {
    for (std::size_t k = 0; k < chunks; ++k) run_chunk(k);
  }
}

void MeshBackend::dispatch_soa_chunks(const SoaLeaves& soa,
                                      std::size_t chunks,
                                      const SoaLeafChunkFn& fn,
                                      exec::ThreadPool* pool,
                                      const SoaPrepareFn& prepare) {
  const std::size_t n = soa.size();
  if (prepare) prepare(soa);
  if (n == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, n);
  const auto run_chunk = [&](std::size_t k) {
    SoaLeafChunk ch;
    ch.index = k;
    ch.begin = k * n / chunks;
    ch.end = (k + 1) * n / chunks;
    ch.leaves = &soa;
    fn(ch);
  };
  if (pool != nullptr && !exec::in_parallel_task()) {
    pool->parallel_for(chunks, run_chunk);
  } else {
    for (std::size_t k = 0; k < chunks; ++k) run_chunk(k);
  }
}

void MeshBackend::sweep_leaves_chunked_soa(std::size_t chunks,
                                           const SoaLeafChunkFn& fn,
                                           exec::ThreadPool* pool,
                                           const SoaPrepareFn& prepare) {
  // Same charged extraction as the AoS path, into parallel arrays.
  SoaLeaves soa;
  visit_leaves([&](const LocCode& c, const CellData& d) {
    soa.push_back(c, d);
  });
  dispatch_soa_chunks(soa, chunks, fn, pool, prepare);
}

}  // namespace pmo::amr
