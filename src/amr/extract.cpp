#include "amr/extract.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

namespace pmo::amr {

std::size_t write_vtk(MeshBackend& mesh, const std::string& path) {
  struct Cell {
    std::array<double, 3> center;
    double half;
    CellData data;
  };
  std::vector<Cell> cells;
  mesh.visit_leaves([&](const LocCode& code, const CellData& d) {
    cells.push_back({code.center_unit(), 0.5 * code.size_unit(), d});
  });

  std::ofstream os(path);
  PMO_CHECK_MSG(os.good(), "cannot open " << path);
  os << "# vtk DataFile Version 3.0\n"
     << "PM-octree extracted mesh\n"
     << "ASCII\nDATASET UNSTRUCTURED_GRID\n";
  os << "POINTS " << cells.size() * 8 << " double\n";
  for (const auto& c : cells) {
    for (int k = 0; k < 2; ++k)
      for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 2; ++i) {
          os << c.center[0] + (i == 0 ? -c.half : c.half) << " "
             << c.center[1] + (j == 0 ? -c.half : c.half) << " "
             << c.center[2] + (k == 0 ? -c.half : c.half) << "\n";
        }
  }
  os << "CELLS " << cells.size() << " " << cells.size() * 9 << "\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto b = i * 8;
    // VTK_VOXEL ordering matches our (i,j,k) nesting.
    os << "8 " << b << " " << b + 1 << " " << b + 2 << " " << b + 3 << " "
       << b + 4 << " " << b + 5 << " " << b + 6 << " " << b + 7 << "\n";
  }
  os << "CELL_TYPES " << cells.size() << "\n";
  for (std::size_t i = 0; i < cells.size(); ++i) os << "11\n";  // VTK_VOXEL
  os << "CELL_DATA " << cells.size() << "\n";
  os << "SCALARS vof double 1\nLOOKUP_TABLE default\n";
  for (const auto& c : cells) os << c.data.vof << "\n";
  os << "SCALARS tracer double 1\nLOOKUP_TABLE default\n";
  for (const auto& c : cells) os << c.data.tracer << "\n";
  os << "SCALARS pressure double 1\nLOOKUP_TABLE default\n";
  for (const auto& c : cells) os << c.data.pressure << "\n";
  return cells.size();
}

void print_slice(MeshBackend& mesh, std::ostream& os, double x_slice,
                 int cols, int rows) {
  // Rasterize by sampling the leaf containing each pixel center.
  for (int r = 0; r < rows; ++r) {
    const double z = 1.0 - (r + 0.5) / rows;  // top of domain first
    for (int c = 0; c < cols; ++c) {
      const double y = (c + 0.5) / cols;
      const auto grid = [&](double v) {
        return static_cast<std::uint32_t>(
            std::clamp(v, 0.0, 0.999999) * (1u << 10));
      };
      const auto probe =
          LocCode::from_grid(10, grid(x_slice), grid(y), grid(z));
      const double vof = mesh.sample(probe).vof;
      os << (vof > 0.99 ? '#' : (vof > 0.01 ? '+' : '.'));
    }
    os << "\n";
  }
}

MeshSummary summarize(MeshBackend& mesh) {
  MeshSummary s;
  s.min_level = kMaxLevel;
  mesh.visit_leaves([&](const LocCode& code, const CellData& d) {
    ++s.leaves;
    s.min_level = std::min(s.min_level, code.level());
    s.max_level = std::max(s.max_level, code.level());
    if (is_interface_cell(d)) ++s.interface_cells;
    const double h = code.size_unit();
    s.liquid_volume += d.vof * h * h * h;
  });
  if (s.leaves == 0) s.min_level = 0;
  return s;
}

}  // namespace pmo::amr
