// Backend abstraction over the three octree implementations the paper
// evaluates (§5.1): in-core-octree (Gerris), out-of-core-octree (Etree),
// and PM-octree. The AMR workload driver (droplet ejection) runs
// unmodified on top of any of them; the cluster simulator instantiates one
// backend per simulated rank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/morton.hpp"
#include "octree/cell_data.hpp"

namespace pmo::exec {
class ThreadPool;
}  // namespace pmo::exec

namespace pmo::amr {

/// Predicate deciding whether a leaf should be refined/coarsened.
using LeafPred = std::function<bool(const LocCode&, const CellData&)>;
/// Initializer for newly created children.
using ChildInit = std::function<void(const LocCode&, CellData&)>;
/// Mutable leaf visitor; returns true when it modified the cell.
using LeafMutFn = std::function<bool(const LocCode&, CellData&)>;
/// Read-only leaf visitor.
using LeafFn = std::function<void(const LocCode&, const CellData&)>;

/// One contiguous Morton range of an extracted leaf snapshot, as handed
/// to sweep_leaves_chunked() callbacks. `codes`/`cells` point at the FULL
/// sorted leaf arrays (all `leaves` entries) so a chunk can look up
/// neighbors outside its own [begin, end) range; the callback owns only
/// the indices inside its range.
struct LeafChunk {
  std::size_t index = 0;   ///< chunk ordinal in [0, chunks)
  std::size_t begin = 0;   ///< first leaf index of this chunk
  std::size_t end = 0;     ///< one past the last leaf index
  const LocCode* codes = nullptr;  ///< all leaves, Morton order
  const CellData* cells = nullptr;
  std::size_t leaves = 0;  ///< total leaf count of the snapshot

  /// Data of the leaf whose octant contains `code` (the snapshot
  /// equivalent of MeshBackend::sample, minus device charging): binary
  /// containment search over the sorted leaf array, short-circuited by
  /// `hint` when probes arrive in near-Morton order (the stencil gather
  /// pattern). Returns nullptr when no leaf covers the code (outside the
  /// refined domain).
  const CellData* find(const LocCode& code) const noexcept;

  /// Last candidate index served by find(). Purely an acceleration:
  /// find() verifies the hint before using it, so results never depend
  /// on probe order. Safe despite `mutable`: each chunk object is
  /// confined to a single callback invocation (one worker).
  mutable std::size_t hint = 0;

  /// Candidate-slot inspections (hint checks + binary-search steps)
  /// performed by find() on this chunk. Deterministic — the probe
  /// sequence within a chunk is fixed by the callback, and chunk bounds
  /// never depend on the thread count — so the per-sweep total is an
  /// exact modeled counter (amr.chunk.find_probes), the baseline of the
  /// face-neighbor-index perf gate.
  mutable std::uint64_t probes = 0;
};

/// Per-chunk callback of sweep_leaves_chunked.
using LeafChunkFn = std::function<void(const LeafChunk&)>;
/// Runs once after snapshot extraction, before any chunk callback, with
/// the total leaf count — the place to size per-leaf scratch arrays that
/// chunk callbacks then fill concurrently.
using LeafPrepareFn = std::function<void(std::size_t)>;

/// Structure-of-arrays leaf snapshot: the same Morton-sorted leaf
/// enumeration as the AoS snapshot of sweep_leaves_chunked, split into
/// parallel key/level/vof/tracer arrays so the solve kernels (the SIMD
/// gather, the interface-band mark kernel, the face-neighbor-index build)
/// stream one field at a time — the DRAM-side mirror of the linear cold
/// tier's packed page layout, which is why the PM backend can fill it
/// page-wise straight from chains.
struct SoaLeaves {
  std::vector<std::uint64_t> keys;   ///< LocCode::key(), Morton order
  std::vector<std::uint8_t> levels;  ///< LocCode::level()
  std::vector<double> vof;
  std::vector<double> tracer;

  std::size_t size() const noexcept { return keys.size(); }
  void clear() noexcept {
    keys.clear();
    levels.clear();
    vof.clear();
    tracer.clear();
  }
  void push_back(const LocCode& code, const CellData& d) {
    keys.push_back(code.key());
    levels.push_back(static_cast<std::uint8_t>(code.level()));
    vof.push_back(d.vof);
    tracer.push_back(d.tracer);
  }
};

/// One contiguous Morton range of an SoA snapshot; `leaves` points at the
/// full arrays (neighbor slots resolved by a prebuilt index may land
/// outside [begin, end)), the callback owns only its own range's output
/// slots.
struct SoaLeafChunk {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  const SoaLeaves* leaves = nullptr;
};

using SoaLeafChunkFn = std::function<void(const SoaLeafChunk&)>;
/// Runs once after SoA extraction, before any chunk callback, with the
/// full snapshot — where per-leaf scratch is sized and the face-neighbor
/// index is built/validated (driver thread, deterministic order).
using SoaPrepareFn = std::function<void(const SoaLeaves&)>;

class MeshBackend {
 public:
  virtual ~MeshBackend() = default;

  virtual std::string name() const = 0;

  /// Morton-order sweep over all leaves with write-back of modifications.
  virtual void sweep_leaves(const LeafMutFn& fn) = 0;
  /// Region-restricted sweep: subtrees for which `visit_subtree` returns
  /// false are skipped entirely. Backends with hierarchical structure
  /// prune; the linear-octree baseline cannot and scans everything (one
  /// more pointer-free handicap, as in the paper).
  virtual void sweep_leaves_pruned(
      const std::function<bool(const LocCode&)>& visit_subtree,
      const LeafMutFn& fn) {
    sweep_leaves([&](const LocCode& code, CellData& d) {
      if (!visit_subtree(code)) return false;
      return fn(code, d);
    });
  }
  /// Read-only Morton-order leaf visit.
  virtual void visit_leaves(const LeafFn& fn) = 0;

  /// Chunked Morton-range sweep for data-parallel read phases (the
  /// droplet solver's stencil gather). The default implementation
  /// extracts the sorted leaf array with one charged visit_leaves pass —
  /// backend read paths mutate modeled state (PM heat tracking, the
  /// Etree buffer pool's LRU), so the snapshot is what makes concurrent
  /// consumption safe — then splits it into `chunks` contiguous ranges
  /// and runs `fn` once per chunk, on `pool` when given (nullptr or a
  /// 1-thread pool → sequentially, ascending chunk index). The
  /// decomposition depends only on (leaf count, chunks), never on the
  /// thread count, so a callback writing results into per-leaf slots is
  /// bit-deterministic across pools. `prepare`, if given, runs once
  /// before the first chunk with the total leaf count. Chunk callbacks
  /// MUST NOT touch the backend (no sample/sweep/refine): they read the
  /// snapshot, the single-writer CoW mutation phase stays with the
  /// caller.
  virtual void sweep_leaves_chunked(std::size_t chunks, const LeafChunkFn& fn,
                                    exec::ThreadPool* pool = nullptr,
                                    const LeafPrepareFn& prepare = nullptr);

  /// SoA variant of sweep_leaves_chunked: extracts the snapshot as
  /// separate key/level/vof/tracer arrays (same charged traversal, same
  /// Morton enumeration, same fixed chunk decomposition). The default
  /// implementation fills the arrays through visit_leaves; the PM backend
  /// overrides extraction to stream linear-tier chains page-wise. Chunk
  /// callbacks follow the sweep_leaves_chunked rules (snapshot-only, no
  /// backend access).
  virtual void sweep_leaves_chunked_soa(
      std::size_t chunks, const SoaLeafChunkFn& fn,
      exec::ThreadPool* pool = nullptr,
      const SoaPrepareFn& prepare = nullptr);

  /// Version stamp of the leaf SET (not the leaf data): any mutation that
  /// adds, removes or renames leaves — refine, coarsen, insert, remove —
  /// bumps it; pure data write-backs, CoW relocations, persists and
  /// layout transformations do not. Equal stamps (plus equal leaf counts)
  /// guarantee two snapshot extractions enumerate identical (key, level)
  /// arrays, which is the invalidation rule of the solve's face-neighbor
  /// index. The default implementation returns a fresh value on every
  /// call — "always changed" — so backends that do not track structure
  /// stay correct (the index just rebuilds every sweep).
  virtual std::uint64_t structure_version() {
    return fallback_structure_version_++;
  }

  /// Attaches (or detaches, with nullptr) an execution pool the backend
  /// may use to parallelize internal phases — currently the PM-octree's
  /// persist-time merge. Backends without internal parallelism ignore it.
  /// Results must not depend on whether a pool is attached.
  virtual void set_exec(exec::ThreadPool* /*pool*/) noexcept {}

  /// Refines every leaf matching `pred` one level; returns # splits.
  virtual std::size_t refine_where(const LeafPred& pred,
                                   const ChildInit& init = nullptr) = 0;
  /// Merges every all-leaf sibling group whose members match; returns #.
  virtual std::size_t coarsen_where(const LeafPred& pred) = 0;
  /// Enforces the 2:1 constraint; returns # leaves refined.
  virtual std::size_t balance() = 0;

  /// Data of the leaf containing `code` (for solver stencils).
  virtual CellData sample(const LocCode& code) = 0;

  virtual std::size_t leaf_count() = 0;

  /// End-of-time-step persistence hook: snapshot for the in-core octree,
  /// pm_persistent for PM-octree, fsync for Etree.
  virtual void end_step(int step) = 0;

  /// Restores state from the persistent medium after a (simulated) crash.
  /// Returns false when the backend cannot recover (e.g. nothing saved).
  virtual bool recover() = 0;

  // ---- accounting for the scaling/figure harnesses -----------------------
  /// Total modeled memory+I/O time so far, nanoseconds.
  virtual std::uint64_t modeled_ns() const = 0;
  /// NVBM write operations so far (Fig. 11's second metric).
  virtual std::uint64_t nvbm_writes() const = 0;
  /// Approximate resident bytes across DRAM and NVBM.
  virtual std::uint64_t memory_bytes() = 0;

 protected:
  /// Shared chunk dispatcher of the SoA sweep: fixed decomposition by
  /// (leaf count, chunks), pool fan-out with the same nesting guard as
  /// the AoS path. Backends that override extraction call this.
  static void dispatch_soa_chunks(const SoaLeaves& soa, std::size_t chunks,
                                  const SoaLeafChunkFn& fn,
                                  exec::ThreadPool* pool,
                                  const SoaPrepareFn& prepare);

 private:
  std::uint64_t fallback_structure_version_ = 0;
};

}  // namespace pmo::amr
