// Backend abstraction over the three octree implementations the paper
// evaluates (§5.1): in-core-octree (Gerris), out-of-core-octree (Etree),
// and PM-octree. The AMR workload driver (droplet ejection) runs
// unmodified on top of any of them; the cluster simulator instantiates one
// backend per simulated rank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/morton.hpp"
#include "octree/cell_data.hpp"

namespace pmo::exec {
class ThreadPool;
}  // namespace pmo::exec

namespace pmo::amr {

/// Predicate deciding whether a leaf should be refined/coarsened.
using LeafPred = std::function<bool(const LocCode&, const CellData&)>;
/// Initializer for newly created children.
using ChildInit = std::function<void(const LocCode&, CellData&)>;
/// Mutable leaf visitor; returns true when it modified the cell.
using LeafMutFn = std::function<bool(const LocCode&, CellData&)>;
/// Read-only leaf visitor.
using LeafFn = std::function<void(const LocCode&, const CellData&)>;

/// One contiguous Morton range of an extracted leaf snapshot, as handed
/// to sweep_leaves_chunked() callbacks. `codes`/`cells` point at the FULL
/// sorted leaf arrays (all `leaves` entries) so a chunk can look up
/// neighbors outside its own [begin, end) range; the callback owns only
/// the indices inside its range.
struct LeafChunk {
  std::size_t index = 0;   ///< chunk ordinal in [0, chunks)
  std::size_t begin = 0;   ///< first leaf index of this chunk
  std::size_t end = 0;     ///< one past the last leaf index
  const LocCode* codes = nullptr;  ///< all leaves, Morton order
  const CellData* cells = nullptr;
  std::size_t leaves = 0;  ///< total leaf count of the snapshot

  /// Data of the leaf whose octant contains `code` (the snapshot
  /// equivalent of MeshBackend::sample, minus device charging): binary
  /// containment search over the sorted leaf array, short-circuited by
  /// `hint` when probes arrive in near-Morton order (the stencil gather
  /// pattern). Returns nullptr when no leaf covers the code (outside the
  /// refined domain).
  const CellData* find(const LocCode& code) const noexcept;

  /// Last candidate index served by find(). Purely an acceleration:
  /// find() verifies the hint before using it, so results never depend
  /// on probe order. Safe despite `mutable`: each chunk object is
  /// confined to a single callback invocation (one worker).
  mutable std::size_t hint = 0;
};

/// Per-chunk callback of sweep_leaves_chunked.
using LeafChunkFn = std::function<void(const LeafChunk&)>;
/// Runs once after snapshot extraction, before any chunk callback, with
/// the total leaf count — the place to size per-leaf scratch arrays that
/// chunk callbacks then fill concurrently.
using LeafPrepareFn = std::function<void(std::size_t)>;

class MeshBackend {
 public:
  virtual ~MeshBackend() = default;

  virtual std::string name() const = 0;

  /// Morton-order sweep over all leaves with write-back of modifications.
  virtual void sweep_leaves(const LeafMutFn& fn) = 0;
  /// Region-restricted sweep: subtrees for which `visit_subtree` returns
  /// false are skipped entirely. Backends with hierarchical structure
  /// prune; the linear-octree baseline cannot and scans everything (one
  /// more pointer-free handicap, as in the paper).
  virtual void sweep_leaves_pruned(
      const std::function<bool(const LocCode&)>& visit_subtree,
      const LeafMutFn& fn) {
    sweep_leaves([&](const LocCode& code, CellData& d) {
      if (!visit_subtree(code)) return false;
      return fn(code, d);
    });
  }
  /// Read-only Morton-order leaf visit.
  virtual void visit_leaves(const LeafFn& fn) = 0;

  /// Chunked Morton-range sweep for data-parallel read phases (the
  /// droplet solver's stencil gather). The default implementation
  /// extracts the sorted leaf array with one charged visit_leaves pass —
  /// backend read paths mutate modeled state (PM heat tracking, the
  /// Etree buffer pool's LRU), so the snapshot is what makes concurrent
  /// consumption safe — then splits it into `chunks` contiguous ranges
  /// and runs `fn` once per chunk, on `pool` when given (nullptr or a
  /// 1-thread pool → sequentially, ascending chunk index). The
  /// decomposition depends only on (leaf count, chunks), never on the
  /// thread count, so a callback writing results into per-leaf slots is
  /// bit-deterministic across pools. `prepare`, if given, runs once
  /// before the first chunk with the total leaf count. Chunk callbacks
  /// MUST NOT touch the backend (no sample/sweep/refine): they read the
  /// snapshot, the single-writer CoW mutation phase stays with the
  /// caller.
  virtual void sweep_leaves_chunked(std::size_t chunks, const LeafChunkFn& fn,
                                    exec::ThreadPool* pool = nullptr,
                                    const LeafPrepareFn& prepare = nullptr);

  /// Attaches (or detaches, with nullptr) an execution pool the backend
  /// may use to parallelize internal phases — currently the PM-octree's
  /// persist-time merge. Backends without internal parallelism ignore it.
  /// Results must not depend on whether a pool is attached.
  virtual void set_exec(exec::ThreadPool* /*pool*/) noexcept {}

  /// Refines every leaf matching `pred` one level; returns # splits.
  virtual std::size_t refine_where(const LeafPred& pred,
                                   const ChildInit& init = nullptr) = 0;
  /// Merges every all-leaf sibling group whose members match; returns #.
  virtual std::size_t coarsen_where(const LeafPred& pred) = 0;
  /// Enforces the 2:1 constraint; returns # leaves refined.
  virtual std::size_t balance() = 0;

  /// Data of the leaf containing `code` (for solver stencils).
  virtual CellData sample(const LocCode& code) = 0;

  virtual std::size_t leaf_count() = 0;

  /// End-of-time-step persistence hook: snapshot for the in-core octree,
  /// pm_persistent for PM-octree, fsync for Etree.
  virtual void end_step(int step) = 0;

  /// Restores state from the persistent medium after a (simulated) crash.
  /// Returns false when the backend cannot recover (e.g. nothing saved).
  virtual bool recover() = 0;

  // ---- accounting for the scaling/figure harnesses -----------------------
  /// Total modeled memory+I/O time so far, nanoseconds.
  virtual std::uint64_t modeled_ns() const = 0;
  /// NVBM write operations so far (Fig. 11's second metric).
  virtual std::uint64_t nvbm_writes() const = 0;
  /// Approximate resident bytes across DRAM and NVBM.
  virtual std::uint64_t memory_bytes() = 0;
};

}  // namespace pmo::amr
