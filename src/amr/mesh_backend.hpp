// Backend abstraction over the three octree implementations the paper
// evaluates (§5.1): in-core-octree (Gerris), out-of-core-octree (Etree),
// and PM-octree. The AMR workload driver (droplet ejection) runs
// unmodified on top of any of them; the cluster simulator instantiates one
// backend per simulated rank.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/morton.hpp"
#include "octree/cell_data.hpp"

namespace pmo::amr {

/// Predicate deciding whether a leaf should be refined/coarsened.
using LeafPred = std::function<bool(const LocCode&, const CellData&)>;
/// Initializer for newly created children.
using ChildInit = std::function<void(const LocCode&, CellData&)>;
/// Mutable leaf visitor; returns true when it modified the cell.
using LeafMutFn = std::function<bool(const LocCode&, CellData&)>;
/// Read-only leaf visitor.
using LeafFn = std::function<void(const LocCode&, const CellData&)>;

class MeshBackend {
 public:
  virtual ~MeshBackend() = default;

  virtual std::string name() const = 0;

  /// Morton-order sweep over all leaves with write-back of modifications.
  virtual void sweep_leaves(const LeafMutFn& fn) = 0;
  /// Region-restricted sweep: subtrees for which `visit_subtree` returns
  /// false are skipped entirely. Backends with hierarchical structure
  /// prune; the linear-octree baseline cannot and scans everything (one
  /// more pointer-free handicap, as in the paper).
  virtual void sweep_leaves_pruned(
      const std::function<bool(const LocCode&)>& visit_subtree,
      const LeafMutFn& fn) {
    sweep_leaves([&](const LocCode& code, CellData& d) {
      if (!visit_subtree(code)) return false;
      return fn(code, d);
    });
  }
  /// Read-only Morton-order leaf visit.
  virtual void visit_leaves(const LeafFn& fn) = 0;

  /// Refines every leaf matching `pred` one level; returns # splits.
  virtual std::size_t refine_where(const LeafPred& pred,
                                   const ChildInit& init = nullptr) = 0;
  /// Merges every all-leaf sibling group whose members match; returns #.
  virtual std::size_t coarsen_where(const LeafPred& pred) = 0;
  /// Enforces the 2:1 constraint; returns # leaves refined.
  virtual std::size_t balance() = 0;

  /// Data of the leaf containing `code` (for solver stencils).
  virtual CellData sample(const LocCode& code) = 0;

  virtual std::size_t leaf_count() = 0;

  /// End-of-time-step persistence hook: snapshot for the in-core octree,
  /// pm_persistent for PM-octree, fsync for Etree.
  virtual void end_step(int step) = 0;

  /// Restores state from the persistent medium after a (simulated) crash.
  /// Returns false when the backend cannot recover (e.g. nothing saved).
  virtual bool recover() = 0;

  // ---- accounting for the scaling/figure harnesses -----------------------
  /// Total modeled memory+I/O time so far, nanoseconds.
  virtual std::uint64_t modeled_ns() const = 0;
  /// NVBM write operations so far (Fig. 11's second metric).
  virtual std::uint64_t nvbm_writes() const = 0;
  /// Approximate resident bytes across DRAM and NVBM.
  virtual std::uint64_t memory_bytes() = 0;
};

}  // namespace pmo::amr
