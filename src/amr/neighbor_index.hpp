// Per-sweep face-neighbor index of the droplet solve (§5.1's Jacobi
// relaxation): one batched pass over the Morton-sorted SoA leaf snapshot
// resolves, for every leaf, the snapshot slot of the covering leaf behind
// each of its 6 faces into an int32 table. The solve's gather kernel then
// reads neighbors by slot — no per-face binary search per sweep.
//
// Lifetime: the table depends only on the leaf SET (keys + levels), never
// on cell data, so it stays valid across all `solver_sweeps` Jacobi
// iterations of a step (the inter-sweep tracer write-back is data-only)
// and across steps in which refine/coarsen/balance changed nothing. It is
// invalidated by MeshBackend::structure_version() — the leaf-set stamp —
// plus a leaf-count cross-check.
//
// The build is the one place the solve still searches, and it never
// searches point-wise: it computes all 6n same-size neighbor keys with
// the batched BMI2 Morton kernels (morton_decode3_batch /
// morton_encode3_batch, 8 leaves at a time — the same 8-lane shape as the
// linear tier's batch_locate), sorts the resolution requests by neighbor
// key, and answers every one of them with a single forward merge sweep
// over the sorted leaf keys — O(1) amortized candidate inspections per
// face, versus O(log n) for each per-face binary search in the legacy
// arm. perf_smoke holds the build's total probe count to <= 25% of that
// baseline's per-sweep find probes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "amr/mesh_backend.hpp"

namespace pmo::amr {

class FaceNeighborIndex {
 public:
  /// Resolves all 6 neighbor slots per leaf over the Morton-sorted
  /// (keys, levels) arrays. Slot -1 = no covering leaf (the neighbor
  /// falls outside the root domain). Containment semantics are exactly
  /// LeafChunk::find's: a coarser covering leaf, or — when the neighbor
  /// region is refined finer — its first descendant corner leaf.
  void build(const std::uint64_t* keys, const std::uint8_t* levels,
             std::size_t n);
  void build(const SoaLeaves& soa) {
    build(soa.keys.data(), soa.levels.data(), soa.size());
  }

  /// True when the table was built for this exact leaf-set stamp.
  bool valid_for(std::uint64_t version,
                 std::size_t leaves) const noexcept {
    return valid_ && version == version_ && leaves == leaves_;
  }
  /// Records the leaf-set stamp the current table belongs to.
  void stamp(std::uint64_t version, std::size_t leaves) noexcept {
    version_ = version;
    leaves_ = leaves;
    valid_ = true;
  }
  void invalidate() noexcept { valid_ = false; }

  /// 6 slots per leaf, leaf-major: slots()[6*i + f] for face f of leaf i
  /// (face order simd::kFaces).
  const std::int32_t* slots() const noexcept { return slots_.data(); }
  std::size_t leaves() const noexcept { return leaves_; }

  /// Candidate-key inspections of the most recent build() — the modeled
  /// neighbor-lookup work counter the perf gate compares against the
  /// per-face-find baseline. Deterministic: the build is a fixed
  /// sequential pass.
  std::uint64_t last_build_probes() const noexcept {
    return last_build_probes_;
  }

 private:
  std::vector<std::int32_t> slots_;
  std::uint64_t version_ = 0;
  std::size_t leaves_ = 0;
  bool valid_ = false;
  std::uint64_t last_build_probes_ = 0;
};

}  // namespace pmo::amr
