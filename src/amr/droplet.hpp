// Droplet-ejection driving workload (§5.1).
//
// The paper's evaluation drives every octree implementation with a
// simulation of inkjet droplet ejection: a liquid jet leaves a nozzle,
// develops a capillary (Rayleigh–Plateau) instability, pinches off and
// breaks into droplets (Fig. 1c). The mesh refines to the finest level in
// a band around the liquid/gas interface and coarsens elsewhere, so the
// hot region *moves* with the jet tip and the traveling capillary wave —
// precisely the access pattern the dynamic layout transformation targets.
//
// We do not integrate the full incompressible Navier–Stokes system (the
// authors used Gerris for that); the octree data structures only observe
// *where* the interface is and *which* cells the solver touches. The jet
// kinematics — tip advance, wave growth, pinch-off into droplets — are
// prescribed analytically, and a light finite-volume relaxation solve runs
// on the leaves each step to generate solver-like traffic. DESIGN.md
// documents this substitution.
#pragma once

#include <cstdint>

#include "amr/mesh_backend.hpp"
#include "amr/neighbor_index.hpp"

namespace pmo::amr {

struct DropletParams {
  int min_level = 2;   ///< uniform background resolution
  int max_level = 5;   ///< interface resolution (4+ orders in the paper)
  double dt = 0.02;

  double nozzle_z = 0.08;       ///< reservoir occupies z < nozzle_z
  double reservoir_radius = 0.30;
  double jet_radius = 0.055;
  double jet_speed = 0.35;      ///< tip advance per unit time
  double wave_number = 55.0;    ///< capillary wavenumber k
  double wave_speed = 0.22;     ///< phase speed of the disturbance
  double growth_rate = 2.4;     ///< sigma: amplitude e-folding rate
  double initial_amplitude = 0.04;
  double axis_x = 0.5;
  double axis_y = 0.5;

  int solver_sweeps = 2;        ///< relaxation passes per step
  /// Resolve stencil neighbors through the per-sweep face-neighbor index
  /// (one batched build, reused across sweeps/steps until the leaf set
  /// changes) instead of per-face binary search in every sweep. Results
  /// are bit-identical either way; `false` keeps the legacy per-face
  /// LeafChunk::find arm (the perf gate's baseline).
  bool neighbor_index = true;
  /// Extra sub-cycled sweeps over the *focus window* (the near-tip /
  /// pinch-off region): breakup dynamics need finer time resolution, so
  /// the solver concentrates work there — the access-pattern hot spot the
  /// dynamic layout transformation targets.
  int focus_sweeps = 8;
  double focus_halfwidth = 0.10;  ///< z half-width of the focus window
  double interface_band = 1.5;  ///< VOF smearing width in cells
};

/// Per-step outcome, with per-routine modeled time (nanoseconds).
struct StepStats {
  std::size_t refined = 0;
  std::size_t coarsened = 0;
  std::size_t balance_refined = 0;
  std::size_t leaves = 0;
  std::uint64_t advect_ns = 0;
  std::uint64_t refine_coarsen_ns = 0;
  std::uint64_t balance_ns = 0;
  std::uint64_t solve_ns = 0;
  std::uint64_t persist_ns = 0;
  std::uint64_t total_ns() const noexcept {
    return advect_ns + refine_coarsen_ns + balance_ns + solve_ns +
           persist_ns;
  }
};

class DropletWorkload {
 public:
  explicit DropletWorkload(DropletParams params = {});

  const DropletParams& params() const noexcept { return params_; }
  double time() const noexcept { return time_; }

  /// Signed interface function: > 0 inside liquid, < 0 in gas; the zero
  /// level set is the jet/droplet surface at time t.
  double phi(double x, double y, double z, double t) const;

  /// Smeared volume fraction of the cell at `code` at time t.
  double vof_cell(const LocCode& code, double t) const;

  /// The refinement criterion: the cell straddles the interface.
  bool refine_feature(const LocCode& code, const CellData& d) const;

  /// The solver's hot-spot predicate — the natural PM-octree feature
  /// function (§3.3): interface cells inside the focus window around the
  /// advancing jet tip, where the solver sub-cycles.
  bool hot_feature(const LocCode& code, const CellData& d) const {
    return hot_feature_at(code, d, time_);
  }
  bool hot_feature_at(const LocCode& code, const CellData& d,
                      double t) const;
  /// Current jet-tip height (focus window center).
  double tip_z(double t) const;

  /// Construct routine: builds the initial mesh (uniform min_level, then
  /// interface-refined to max_level, balanced). Returns modeled ns.
  std::uint64_t initialize(MeshBackend& mesh);

  /// Advances one time step: advect fields, refine & coarsen, balance,
  /// solve, persist (unless `persist` is false).
  StepStats step(MeshBackend& mesh, int step_index, bool persist = true);

  /// Optional execution pool for the solve's chunked stencil gather
  /// (read-only phase; see MeshBackend::sweep_leaves_chunked) and for the
  /// backend's internal phases (forwarded via MeshBackend::set_exec — the
  /// PM-octree parallelizes its persist-time merge). nullptr keeps
  /// everything sequential. Results — field values, modeled time, and the
  /// persisted image — are bit-identical either way: the decompositions
  /// are fixed and all reductions are replayed in deterministic order.
  void set_exec(exec::ThreadPool* pool) noexcept { exec_ = pool; }

 private:
  double jet_profile(double z, double t) const;

  DropletParams params_;
  double time_ = 0.0;
  exec::ThreadPool* exec_ = nullptr;
  /// Face-neighbor slot table of the solve, cached across Jacobi sweeps
  /// and across steps; invalidated by MeshBackend::structure_version().
  FaceNeighborIndex nbr_index_;
};

}  // namespace pmo::amr
