#include "amr/pm_backend.hpp"

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace pmo::amr {

namespace {
/// Persist/replica work renders on its own thread row of the process
/// track, so fig03's compute and persist slices visibly overlap.
constexpr std::uint32_t kPersistTid = 1000;
}  // namespace

PmOctreeBackend::PmOctreeBackend(nvbm::Device& device,
                                 pmoctree::PmConfig pm)
    : heap_(device), pm_(pm) {
  tree_ = pmoctree::pm_create(heap_, nullptr, pm_);
}

void PmOctreeBackend::end_step(int) {
  // Keep the persist pipeline on a dedicated trace row (same pid the
  // caller picked, different tid) so it renders against the compute
  // slices instead of nesting under them.
  const auto track = telemetry::trace::current_track();
  telemetry::trace::TrackGuard persist_track(track.pid, kPersistTid);
  if (telemetry::trace::active()) {
    telemetry::trace::name_thread(track.pid, kPersistTid, "persist");
  }
  last_persist_ = tree_->persist();
  if (pm_.enable_replica) {
    telemetry::Span span("pmoctree.replica_ship");
    replica_bytes_ += replica_mgr_.ship(*tree_, replica_);
  }
}

bool PmOctreeBackend::recover() {
  if (!pmoctree::PmOctree::can_restore(heap_)) {
    telemetry::trace::audit("amr.recover", {{"ok", 0.0}});
    return false;
  }
  retired_ns_ += tree_->dram_counters().modeled_ns();
  recover_version_base_ += tree_->topology_version() + 1;
  tree_ = pmoctree::pm_restore(heap_, pm_);
  tree_->set_exec(exec_);
  telemetry::trace::audit("amr.recover", {{"ok", 1.0}});
  return true;
}

}  // namespace pmo::amr
