#include "amr/pm_backend.hpp"

#include "telemetry/telemetry.hpp"

namespace pmo::amr {

PmOctreeBackend::PmOctreeBackend(nvbm::Device& device,
                                 pmoctree::PmConfig pm)
    : heap_(device), pm_(pm) {
  tree_ = pmoctree::pm_create(heap_, nullptr, pm_);
}

void PmOctreeBackend::end_step(int) {
  last_persist_ = tree_->persist();
  if (pm_.enable_replica) {
    telemetry::Span span("pmoctree.replica_ship");
    replica_bytes_ += replica_mgr_.ship(*tree_, replica_);
  }
}

bool PmOctreeBackend::recover() {
  if (!pmoctree::PmOctree::can_restore(heap_)) return false;
  retired_ns_ += tree_->dram_counters().modeled_ns();
  tree_ = pmoctree::pm_restore(heap_, pm_);
  return true;
}

}  // namespace pmo::amr
