// MeshBackend adapter over PM-octree (the paper's system under test).
#pragma once

#include <memory>

#include "amr/mesh_backend.hpp"
#include "pmoctree/api.hpp"
#include "pmoctree/replica.hpp"

namespace pmo::amr {

class PmOctreeBackend final : public MeshBackend {
 public:
  /// Builds a fresh PM-octree on `device` (which hosts the NVBM heap).
  PmOctreeBackend(nvbm::Device& device, pmoctree::PmConfig pm = {});

  std::string name() const override { return "PM-octree"; }

  void sweep_leaves(const LeafMutFn& fn) override {
    tree_->for_each_leaf_mut(fn);
  }
  void sweep_leaves_pruned(
      const std::function<bool(const LocCode&)>& visit_subtree,
      const LeafMutFn& fn) override {
    tree_->for_each_leaf_mut_pruned(visit_subtree, fn);
  }
  void visit_leaves(const LeafFn& fn) override { tree_->for_each_leaf(fn); }
  /// SoA snapshot extraction straight from the tree: DRAM/NVBM leaves via
  /// the charged read path, linear-tier chains streamed page-wise (one
  /// page charge per packed page instead of per-record synthesis).
  void sweep_leaves_chunked_soa(std::size_t chunks, const SoaLeafChunkFn& fn,
                                exec::ThreadPool* pool = nullptr,
                                const SoaPrepareFn& prepare =
                                    nullptr) override {
    SoaLeaves soa;
    tree_->extract_leaves_soa(soa.keys, soa.levels, soa.vof, soa.tracer);
    dispatch_soa_chunks(soa, chunks, fn, pool, prepare);
  }
  /// Leaf-set stamp: the tree's topology version, offset by a base that
  /// jumps on recover() (pm_restore replaces the tree, resetting its
  /// counter — the offset keeps stamps from ever repeating across the
  /// swap).
  std::uint64_t structure_version() override {
    return recover_version_base_ + tree_->topology_version();
  }
  std::size_t refine_where(const LeafPred& pred,
                           const ChildInit& init) override {
    return tree_->refine_where(pred, init);
  }
  std::size_t coarsen_where(const LeafPred& pred) override {
    return tree_->coarsen_where(pred);
  }
  std::size_t balance() override { return tree_->balance(); }
  CellData sample(const LocCode& code) override {
    return tree_->sample(code);
  }
  std::size_t leaf_count() override { return tree_->leaf_count(); }
  void set_exec(exec::ThreadPool* pool) noexcept override {
    exec_ = pool;
    tree_->set_exec(pool);
  }

  /// pm_persistent at every step end; ships the replica delta when the
  /// replica feature is on.
  void end_step(int step) override;
  /// Same-node recovery: pm_restore — O(1).
  bool recover() override;

  std::uint64_t modeled_ns() const override {
    return retired_ns_ + tree_->modeled_ns();
  }
  std::uint64_t nvbm_writes() const override {
    return tree_->device().counters().writes;
  }
  std::uint64_t memory_bytes() override {
    const auto s = tree_->stats();
    return s.dram_bytes + s.nvbm_live_bytes;
  }

  /// Registers an application feature function for the layout sampler.
  void register_feature(pmoctree::FeatureFn fn) {
    tree_->register_feature(std::move(fn));
  }

  /// Pins the latest durable epoch for concurrent serve readers. Safe
  /// from any thread; handles must be released before recover() replaces
  /// the tree (the registry outlives it, but the pinned bytes live in
  /// this backend's heap).
  pmoctree::SnapshotHandle pin_snapshot() { return tree_->pin_snapshot(); }
  /// Epoch of the latest durable (pinnable) version; 0 before the first
  /// persisted step. Safe from any thread.
  std::uint32_t durable_epoch() const {
    return tree_->snapshot_published_epoch();
  }

  pmoctree::PmOctree& tree() { return *tree_; }
  const pmoctree::PersistStats& last_persist() const {
    return last_persist_;
  }
  /// Peer replica (valid when PmConfig::enable_replica).
  pmoctree::ReplicaStore& replica() { return replica_; }
  /// Bytes shipped to the replica so far.
  std::uint64_t replica_bytes() const { return replica_bytes_; }

 private:
  nvbm::Heap heap_;
  pmoctree::PmConfig pm_;
  std::unique_ptr<pmoctree::PmOctree> tree_;
  pmoctree::ReplicaManager replica_mgr_;
  pmoctree::ReplicaStore replica_;
  pmoctree::PersistStats last_persist_;
  std::uint64_t replica_bytes_ = 0;
  /// Modeled time accrued by tree instances retired on recovery, so the
  /// backend's clock stays monotonic across restarts.
  std::uint64_t retired_ns_ = 0;
  /// Attached execution pool, re-applied to trees rebuilt on recover().
  exec::ThreadPool* exec_ = nullptr;
  /// structure_version() base, advanced past the retired tree's stamp on
  /// every recover() so the new tree's restarted counter never collides.
  std::uint64_t recover_version_base_ = 0;
};

}  // namespace pmo::amr
